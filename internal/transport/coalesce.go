package transport

// coalesceMaxMessages bounds how many buffered sends a Coalescer admits
// before forcing a flush even while its queue still has backlog: a sender
// that never drains must not defer the wire indefinitely, and capping the
// batch keeps per-flush latency jitter small.
const coalesceMaxMessages = 64

// BatchConn is implemented by connections that can defer the socket flush
// across several sends. SendBuffered frames the message without pushing it
// to the wire (the payload ownership contract is identical to Send); Flush
// pushes everything buffered in one write. Connections without real write
// buffers (inproc — messages cross by reference) simply don't implement
// it, and callers fall back to plain Send via Coalescer.
type BatchConn interface {
	SendBuffered(m Message) error
	Flush() error
}

// BufferSizer is implemented by transports whose connections carry sized
// write/read buffers. SetBufferHint tells the transport the largest data
// chunk the deployment will ship, so conns created afterwards can size
// their buffers to pass a full chunk to the socket in a single write.
// Decorators forward the hint to their inner transport.
type BufferSizer interface {
	SetBufferHint(maxChunkBytes int)
}

// SetBufferHint forwards a max-chunk-bytes hint to the transport if it
// (or, through decorator forwarding, its inner transport) sizes buffers.
// No-op otherwise.
func SetBufferHint(t Transport, maxChunkBytes int) {
	if bs, ok := t.(BufferSizer); ok {
		bs.SetBufferHint(maxChunkBytes)
	}
}

// Coalescer adapts one connection for a queue-draining sender: each Send
// takes a `more` signal (is there backlog behind this message?) and defers
// the socket flush while backlog remains, so a burst of small chunks
// shares one syscall. The flush triggers when the queue drains, when
// coalesceMaxMessages accumulate, or when the conn's own byte threshold
// spills — whichever comes first, keeping added latency bounded to the
// burst the sender was already behind. On connections without BatchConn
// (inproc, shaped, chaos) every call degenerates to a plain Send, which
// also keeps fault-injecting decorators on their per-message path.
//
// Not safe for concurrent use: a Coalescer belongs to the single sender
// goroutine that owns the queue (Conn.Send itself remains concurrency-safe
// for other callers, e.g. heartbeats sharing the conn — a concurrent plain
// Send simply flushes anything the Coalescer had buffered).
type Coalescer struct {
	conn Conn
	bc   BatchConn // nil: conn cannot batch, Send degenerates
	n    int       // messages buffered since the last flush
}

// NewCoalescer wraps c. The BatchConn capability is probed once here.
func NewCoalescer(c Conn) *Coalescer {
	co := &Coalescer{conn: c}
	if bc, ok := c.(BatchConn); ok {
		co.bc = bc
	}
	return co
}

// Send ships m, flushing only when more is false (the sender's queue is
// drained) or the batch cap is reached. An error from the deferred flush
// surfaces here, on the message that triggered it.
func (co *Coalescer) Send(m Message, more bool) error {
	if co.bc == nil {
		return co.conn.Send(m)
	}
	if err := co.bc.SendBuffered(m); err != nil {
		return err
	}
	co.n++
	if !more || co.n >= coalesceMaxMessages {
		co.n = 0
		return co.bc.Flush()
	}
	return nil
}

// Flush pushes any deferred frames to the wire. Needed when the sender
// parks without a final Send(m, false) — e.g. before blocking on a
// condition unrelated to its queue.
func (co *Coalescer) Flush() error {
	if co.bc == nil || co.n == 0 {
		return nil
	}
	co.n = 0
	return co.bc.Flush()
}
