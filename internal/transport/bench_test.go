package transport

import (
	"bytes"
	"fmt"
	"testing"
)

// BenchmarkChunkCodec measures encode+decode of one data chunk through a
// stateful stream for each codec and payload size — the hot path every
// activation row crosses on socket transports. The binary codec must beat
// gob in both ns/op and allocs/op (BENCH_baseline.json records the
// snapshot).
func BenchmarkChunkCodec(b *testing.B) {
	for _, codec := range []Codec{Gob(), Binary()} {
		for _, payload := range []int{1 << 10, 64 << 10, 1 << 20} {
			b.Run(fmt.Sprintf("%s/%dKiB", codec.Name(), payload>>10), func(b *testing.B) {
				var buf bytes.Buffer
				enc := codec.NewEncoder(&buf)
				dec := codec.NewDecoder(&buf)
				msg := testMessage(payload)
				var out Message
				b.SetBytes(int64(payload))
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := enc.Encode(&msg); err != nil {
						b.Fatal(err)
					}
					if err := dec.Decode(&out); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkInprocRoundtrip measures a send+recv pair over the in-process
// transport — the per-chunk overhead every inproc runtime test pays in
// place of a socket write.
func BenchmarkInprocRoundtrip(b *testing.B) {
	tr := NewInproc()
	ln, err := tr.Listen(0)
	if err != nil {
		b.Fatal(err)
	}
	defer ln.Close()
	acceptedCh := make(chan Conn, 1)
	go func() {
		c, _ := ln.Accept()
		acceptedCh <- c
	}()
	conn, err := tr.Dial(1, ln.Addr())
	if err != nil {
		b.Fatal(err)
	}
	defer conn.Close()
	accepted := <-acceptedCh
	msg := testMessage(64 << 10)
	b.SetBytes(int64(len(msg.Payload)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := conn.Send(msg); err != nil {
			b.Fatal(err)
		}
		if _, err := accepted.Recv(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTCPRoundtrip measures the same send+recv pair over a real
// localhost socket with each codec, so the inproc and codec numbers have a
// socket baseline to compare against.
func BenchmarkTCPRoundtrip(b *testing.B) {
	for _, codec := range []Codec{Gob(), Binary()} {
		b.Run(codec.Name(), func(b *testing.B) {
			tr := NewTCP(codec)
			ln, err := tr.Listen(0)
			if err != nil {
				b.Fatal(err)
			}
			defer ln.Close()
			acceptedCh := make(chan Conn, 1)
			go func() {
				c, _ := ln.Accept()
				acceptedCh <- c
			}()
			conn, err := tr.Dial(1, ln.Addr())
			if err != nil {
				b.Fatal(err)
			}
			defer conn.Close()
			accepted := <-acceptedCh
			msg := testMessage(64 << 10)
			b.SetBytes(int64(len(msg.Payload)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := conn.Send(msg); err != nil {
					b.Fatal(err)
				}
				if _, err := accepted.Recv(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
