package transport

import (
	"bytes"
	"fmt"
	"testing"
)

// BenchmarkChunkCodec measures encode+decode of one data chunk through a
// stateful stream for each codec and payload size — the hot path every
// activation row crosses on socket transports. The binary codec must beat
// gob in both ns/op and allocs/op, and the quant encoders must not
// allocate in steady state (BENCH_baseline.json records the snapshot).
func BenchmarkChunkCodec(b *testing.B) {
	codecs := []Codec{
		Gob(), Binary(), Deflate(),
		Quant(QuantInt8, nil), Quant(QuantFP16, nil), Quant(QuantInt8, Deflate()),
	}
	for _, codec := range codecs {
		for _, payload := range []int{1 << 10, 64 << 10, 1 << 20} {
			b.Run(fmt.Sprintf("%s/%dKiB", codec.Name(), payload>>10), func(b *testing.B) {
				var buf bytes.Buffer
				enc := codec.NewEncoder(&buf)
				dec := codec.NewDecoder(&buf)
				msg := testMessage(payload)
				var out Message
				b.SetBytes(int64(payload))
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := enc.Encode(&msg); err != nil {
						b.Fatal(err)
					}
					if err := dec.Decode(&out); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkDeflateConnChurn measures a freshly dialled connection's first
// chunk: new encoder and decoder state, one 64 KiB message through them.
// The package-level flate pools make this cheap — without them every new
// conn paid a ~330 KB flate.Writer plus a ~50 KB decompressor allocation
// right here, multiplied by the n^2 links of an n-provider cluster.
func BenchmarkDeflateConnChurn(b *testing.B) {
	codec := Deflate()
	msg := testMessage(64 << 10)
	var out Message
	b.SetBytes(64 << 10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := codec.NewEncoder(&buf).Encode(&msg); err != nil {
			b.Fatal(err)
		}
		if err := codec.NewDecoder(&buf).Decode(&out); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInprocRoundtrip measures a send+recv pair over the in-process
// transport — the per-chunk overhead every inproc runtime test pays in
// place of a socket write. "fresh" allocates a payload per send (the
// pre-pooling serving path: the runtime makes one buffer per chunk);
// "pooled" cycles buffers through the payload pool the way the runtime
// now does, which is where the alloc drop shows.
func BenchmarkInprocRoundtrip(b *testing.B) {
	const payload = 64 << 10
	run := func(b *testing.B, tr *Inproc, next func() []byte, recycle func([]byte)) {
		ln, err := tr.Listen(0)
		if err != nil {
			b.Fatal(err)
		}
		defer ln.Close()
		acceptedCh := make(chan Conn, 1)
		go func() {
			c, _ := ln.Accept()
			acceptedCh <- c
		}()
		conn, err := tr.Dial(1, ln.Addr())
		if err != nil {
			b.Fatal(err)
		}
		defer conn.Close()
		accepted := <-acceptedCh
		msg := testMessage(0)
		b.SetBytes(payload)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			msg.Payload = next()
			if err := conn.Send(msg); err != nil {
				b.Fatal(err)
			}
			got, err := accepted.Recv()
			if err != nil {
				b.Fatal(err)
			}
			recycle(got.Payload)
		}
	}
	b.Run("fresh", func(b *testing.B) {
		run(b, NewInproc(),
			func() []byte { return make([]byte, payload) },
			func([]byte) {})
	})
	b.Run("pooled", func(b *testing.B) {
		tr := NewPooledInproc(nil)
		run(b, tr,
			func() []byte { return tr.GetPayload(payload) },
			tr.PutPayload)
	})
}

// BenchmarkTCPRoundtrip measures the same send+recv pair over a real
// localhost socket with each codec, so the inproc and codec numbers have a
// socket baseline to compare against. The binary+pool variant cycles
// payloads through the transport's pool (one GetPayload per send, one
// PutPayload per receive) — the serving-path pattern — and must show the
// per-chunk allocation disappearing.
func BenchmarkTCPRoundtrip(b *testing.B) {
	const payload = 64 << 10
	run := func(b *testing.B, tr Transport, next func() []byte, recycle func([]byte)) {
		ln, err := tr.Listen(0)
		if err != nil {
			b.Fatal(err)
		}
		defer ln.Close()
		acceptedCh := make(chan Conn, 1)
		go func() {
			c, _ := ln.Accept()
			acceptedCh <- c
		}()
		conn, err := tr.Dial(1, ln.Addr())
		if err != nil {
			b.Fatal(err)
		}
		defer conn.Close()
		accepted := <-acceptedCh
		msg := testMessage(0)
		b.SetBytes(payload)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			msg.Payload = next()
			if err := conn.Send(msg); err != nil {
				b.Fatal(err)
			}
			got, err := accepted.Recv()
			if err != nil {
				b.Fatal(err)
			}
			recycle(got.Payload)
		}
	}
	fixed := testMessage(payload).Payload
	for _, codec := range []Codec{Gob(), Binary()} {
		b.Run(codec.Name(), func(b *testing.B) {
			run(b, NewTCP(codec),
				func() []byte { return fixed },
				func([]byte) {})
		})
	}
	b.Run("binary+pool", func(b *testing.B) {
		tr := NewPooledTCP(nil, nil)
		pp := tr.(PayloadPool)
		run(b, tr,
			func() []byte {
				buf := pp.GetPayload(payload)
				copy(buf, fixed)
				return buf
			},
			pp.PutPayload)
	})
	// The sized-buffer wire row: buffers cover a whole 64 KiB chunk, so the
	// frame reaches the socket in one write instead of a header-flush plus
	// split payload writes. The delta against the plain "binary" row above
	// is what SetBufferHint buys on the serving path.
	b.Run("binary+hint", func(b *testing.B) {
		tr := NewTCP(nil)
		SetBufferHint(tr, payload)
		run(b, tr,
			func() []byte { return fixed },
			func([]byte) {})
	})
}

// BenchmarkHotPath measures pipelined one-way messages/sec over a real
// localhost socket — the data-plane hot path a provider's destSender
// drives. The receiver drains concurrently; the sender pumps through a
// Coalescer exactly like the runtime does. "sync" is the per-Send-flush
// baseline (one syscall per message, the pre-coalescing wire), "coalesced"
// is the adaptive flush policy; the small-chunk rows are the acceptance
// numbers in BENCH_baseline.json (coalesced must be ≥1.5× sync for ≤4 KiB
// chunks). Payloads cycle through the transport pool and buffers are sized
// identically in both modes — the serving-path configuration — so the
// delta isolates the flush policy.
func BenchmarkHotPath(b *testing.B) {
	for _, payload := range []int{512, 4 << 10, 64 << 10} {
		for _, mode := range []struct {
			name string
			sync bool
		}{{"sync", true}, {"coalesced", false}} {
			name := fmt.Sprintf("%dB/%s", payload, mode.name)
			if payload >= 1<<10 {
				name = fmt.Sprintf("%dKiB/%s", payload>>10, mode.name)
			}
			b.Run(name, func(b *testing.B) {
				pool := NewPool()
				tr := NewTCPOpts(TCPConfig{SyncFlush: mode.sync, BufferBytes: 128 << 10, Pool: pool})
				ln, err := tr.Listen(0)
				if err != nil {
					b.Fatal(err)
				}
				defer ln.Close()
				acceptedCh := make(chan Conn, 1)
				go func() {
					c, _ := ln.Accept()
					acceptedCh <- c
				}()
				conn, err := tr.Dial(1, ln.Addr())
				if err != nil {
					b.Fatal(err)
				}
				defer conn.Close()
				accepted := <-acceptedCh
				done := make(chan error, 1)
				go func() {
					for i := 0; i < b.N; i++ {
						m, err := accepted.Recv()
						if err != nil {
							done <- err
							return
						}
						pool.Put(m.Payload)
					}
					done <- nil
				}()
				co := NewCoalescer(conn)
				b.SetBytes(int64(payload))
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					msg := testMessage(0)
					msg.Payload = pool.Get(payload)
					if err := co.Send(msg, i+1 < b.N); err != nil {
						b.Fatal(err)
					}
				}
				if err := <-done; err != nil {
					b.Fatal(err)
				}
			})
		}
	}
}
