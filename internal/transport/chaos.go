package transport

import (
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// ChaosConfig tunes the chaos decorator. The zero value injects nothing.
type ChaosConfig struct {
	// Seed makes the injected faults reproducible: each directed
	// connection derives its own rand stream from (Seed, from, to), so a
	// given connection sees the same drop/delay sequence on every run
	// regardless of what other connections do.
	Seed int64
	// Drop is the per-message probability that a data chunk is silently
	// discarded (the sender sees success — packet loss, not a link
	// failure). Control messages are never dropped here; kill heartbeats
	// by isolating the device instead.
	Drop float64
	// MaxDelay, when positive, adds a uniform [0,MaxDelay) pause before
	// each data-chunk delivery. Like Drop it never touches control
	// messages: a delayed heartbeat would trip the failure detector and
	// turn a delay-tolerance run into a recovery run.
	MaxDelay time.Duration
}

// Chaos decorates any inner transport with deterministic, seeded fault
// injection: probabilistic chunk drops, bounded random delivery delays,
// and runtime-controlled partitions. It feeds the recovery machinery the
// failure shapes a real edge network produces — lost chunks surface as
// image timeouts, partitions as send errors and heartbeat loss — without
// the nondeterminism of real packet loss.
type Chaos struct {
	inner Transport
	cfg   ChaosConfig

	mu       sync.Mutex
	isolated map[int]bool
}

// NewChaos wraps inner with seeded fault injection.
func NewChaos(inner Transport, cfg ChaosConfig) *Chaos {
	return &Chaos{inner: inner, cfg: cfg, isolated: make(map[int]bool)}
}

func (t *Chaos) Name() string { return "chaos+" + t.inner.Name() }

// GetPayload / PutPayload forward payload pooling to the inner transport.
func (t *Chaos) GetPayload(n int) []byte { return GetPayload(t.inner, n) }
func (t *Chaos) PutPayload(b []byte)     { RecyclePayload(t.inner, b) }

// SetBufferHint forwards the deployment's max-chunk size to the inner
// transport. Chaos conns stay on the per-message Send path (every message
// must roll its own drop/delay dice), so only buffer sizing crosses.
func (t *Chaos) SetBufferHint(maxChunkBytes int) { SetBufferHint(t.inner, maxChunkBytes) }

// Isolate partitions a device from everyone until Heal: every send to or
// from it fails immediately — including on connections established before
// the partition, heartbeats included — and new dials are refused. The
// requester therefore sees both missed beats and send errors, the two
// detection paths the recovery machinery watches.
func (t *Chaos) Isolate(dev int) {
	t.mu.Lock()
	t.isolated[dev] = true
	t.mu.Unlock()
}

// Heal lifts a device's partition.
func (t *Chaos) Heal(dev int) {
	t.mu.Lock()
	delete(t.isolated, dev)
	t.mu.Unlock()
}

func (t *Chaos) partitioned(from, to int) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.isolated[from] || t.isolated[to]
}

func (t *Chaos) Listen(self int) (Listener, error) {
	ln, err := t.inner.Listen(self)
	if err != nil {
		return nil, err
	}
	return &chaosListener{ln: ln, self: self}, nil
}

func (t *Chaos) Dial(self int, addr string) (Conn, error) {
	to, rest, err := splitDevAddr(addr)
	if err != nil {
		return nil, err
	}
	if t.partitioned(self, to) {
		return nil, fmt.Errorf("transport: chaos: %d->%d partitioned", self, to)
	}
	c, err := t.inner.Dial(self, rest)
	if err != nil {
		return nil, err
	}
	seed := t.cfg.Seed*1_000_003 + int64(self+2)*4099 + int64(to+2)
	return &chaosConn{
		Conn: c,
		t:    t,
		from: self,
		to:   to,
		rng:  rand.New(rand.NewSource(seed)),
	}, nil
}

type chaosListener struct {
	ln   Listener
	self int
}

func (l *chaosListener) Accept() (Conn, error) { return l.ln.Accept() }
func (l *chaosListener) Addr() string          { return encodeDevAddr(l.self, l.ln.Addr()) }
func (l *chaosListener) Close() error          { return l.ln.Close() }

type chaosConn struct {
	Conn
	t        *Chaos
	from, to int

	mu  sync.Mutex
	rng *rand.Rand
}

func (c *chaosConn) Send(m Message) error {
	if c.t.partitioned(c.from, c.to) {
		return fmt.Errorf("transport: chaos: %d->%d partitioned", c.from, c.to)
	}
	cfg := &c.t.cfg
	if !m.control() && (cfg.Drop > 0 || cfg.MaxDelay > 0) {
		c.mu.Lock()
		drop := cfg.Drop > 0 && c.rng.Float64() < cfg.Drop
		var delay time.Duration
		if cfg.MaxDelay > 0 {
			delay = time.Duration(c.rng.Int63n(int64(cfg.MaxDelay)))
		}
		c.mu.Unlock()
		if drop {
			return nil // lost on the wire; the sender cannot tell
		}
		if delay > 0 {
			time.Sleep(delay)
		}
	}
	return c.Conn.Send(m)
}
