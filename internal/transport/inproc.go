package transport

import (
	"fmt"
	"strconv"
	"sync"
)

// inprocBuffer is the per-direction message buffer, sized like the
// runtime's socket-side queues: senders only block when a receiver is this
// far behind, mirroring TCP's kernel buffering without the sockets.
const inprocBuffer = 256

// Inproc is a pure in-process transport: one Inproc value is one network
// namespace, connections are Go channels, and messages cross between
// goroutines without serialisation (payload slices are handed over by
// reference; the runtime never mutates a payload after sending it, so the
// handover is race-free). It exists to make runtime tests fast and
// race-clean — no socket setup, no kernel buffering, no TCP timing noise —
// which is what lets the differential and chaos matrices run wide under
// -race.
type Inproc struct {
	mu        sync.Mutex
	listeners map[string]*inprocListener // guarded by mu
	next      int                        // guarded by mu
	pool      *Pool
}

// NewInproc returns a fresh in-process network namespace.
func NewInproc() *Inproc {
	return &Inproc{listeners: make(map[string]*inprocListener)}
}

// NewPooledInproc is NewInproc with a payload pool. Messages still cross
// by reference — the transport itself never copies — so pooling here is
// purely the Get/Put cycle the runtime drives: a produced payload is
// handed over on Send, consumed at the receiver, recycled with
// PutPayload, and the next GetPayload returns the same buffer.
func NewPooledInproc(pool *Pool) *Inproc {
	if pool == nil {
		pool = NewPool()
	}
	return &Inproc{listeners: make(map[string]*inprocListener), pool: pool}
}

func (t *Inproc) Name() string { return "inproc" }

// GetPayload / PutPayload implement PayloadPool (plain allocation when the
// namespace was built without a pool).
func (t *Inproc) GetPayload(n int) []byte { return t.pool.Get(n) }
func (t *Inproc) PutPayload(b []byte)     { t.pool.Put(b) }

func (t *Inproc) Listen(self int) (Listener, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.next++
	addr := "inproc-" + strconv.Itoa(t.next)
	l := &inprocListener{
		t:       t,
		addr:    addr,
		accepts: make(chan *inprocConn),
		done:    make(chan struct{}),
	}
	t.listeners[addr] = l
	return l, nil
}

func (t *Inproc) Dial(self int, addr string) (Conn, error) {
	t.mu.Lock()
	l := t.listeners[addr]
	t.mu.Unlock()
	if l == nil {
		return nil, fmt.Errorf("transport: inproc dial %s: connection refused", addr)
	}
	ab := make(chan Message, inprocBuffer) // dialer -> listener
	ba := make(chan Message, inprocBuffer) // listener -> dialer
	dialer := &inprocConn{in: ba, out: ab, done: make(chan struct{})}
	accepted := &inprocConn{in: ab, out: ba, done: make(chan struct{})}
	dialer.peer, accepted.peer = accepted, dialer
	select {
	case l.accepts <- accepted:
		return dialer, nil
	case <-l.done:
		return nil, fmt.Errorf("transport: inproc dial %s: connection refused", addr)
	}
}

// inprocListener delivers accepted conns and — unlike a bare TCP listener —
// tears every accepted conn down with itself: closing the listener is the
// transport-level analogue of the process dying, so peers' sends fail
// instead of filling a half-open socket.
type inprocListener struct {
	t       *Inproc
	addr    string
	accepts chan *inprocConn
	done    chan struct{}

	mu       sync.Mutex
	accepted []*inprocConn // guarded by mu
	closed   bool          // guarded by mu
}

func (l *inprocListener) Accept() (Conn, error) {
	select {
	case c := <-l.accepts:
		l.mu.Lock()
		if l.closed {
			l.mu.Unlock()
			c.Close()
			return nil, ErrClosed
		}
		l.accepted = append(l.accepted, c)
		l.mu.Unlock()
		return c, nil
	case <-l.done:
		return nil, ErrClosed
	}
}

func (l *inprocListener) Addr() string { return l.addr }

func (l *inprocListener) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	conns := l.accepted
	l.accepted = nil
	l.mu.Unlock()

	l.t.mu.Lock()
	delete(l.t.listeners, l.addr)
	l.t.mu.Unlock()
	close(l.done)
	for _, c := range conns {
		c.Close()
	}
	return nil
}

// inprocConn is one end of a channel pair. The message channels are never
// closed (senders may still hold them); lifecycle rides the two done
// channels instead.
type inprocConn struct {
	in   chan Message
	out  chan Message
	done chan struct{}
	peer *inprocConn
	once sync.Once
}

func (c *inprocConn) Send(m Message) error {
	// Refuse outright once either end is down, even if buffer space
	// remains: a dead peer must surface as a send error, not a black hole.
	select {
	case <-c.done:
		return ErrClosed
	case <-c.peer.done:
		return fmt.Errorf("transport: inproc send: %w (peer closed)", ErrClosed)
	default:
	}
	select {
	case c.out <- m:
		return nil
	case <-c.done:
		return ErrClosed
	case <-c.peer.done:
		return fmt.Errorf("transport: inproc send: %w (peer closed)", ErrClosed)
	}
}

func (c *inprocConn) Recv() (Message, error) {
	select {
	case m := <-c.in:
		return m, nil
	case <-c.done:
		return Message{}, ErrClosed
	case <-c.peer.done:
		// Like TCP, bytes already in flight are delivered before EOF.
		select {
		case m := <-c.in:
			return m, nil
		default:
			return Message{}, fmt.Errorf("transport: inproc recv: %w (peer closed)", ErrClosed)
		}
	}
}

func (c *inprocConn) Close() error {
	c.once.Do(func() { close(c.done) })
	return nil
}
