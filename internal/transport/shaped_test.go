package transport

import (
	"testing"
	"time"

	"distredge/internal/network"
)

// shapedPair spins up a listener on device `to` over tr, drains everything
// it accepts, and returns a dialled conn from device `from`.
func shapedPair(t *testing.T, tr Transport, from, to int) Conn {
	t.Helper()
	ln, err := tr.Listen(to)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		for {
			if _, err := c.Recv(); err != nil {
				return
			}
		}
	}()
	conn, err := tr.Dial(from, ln.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return conn
}

func timeSend(t *testing.T, conn Conn, m Message) float64 {
	t.Helper()
	start := time.Now()
	if err := conn.Send(m); err != nil {
		t.Fatal(err)
	}
	return time.Since(start).Seconds()
}

// TestShapedAsymmetricLinkChargesDirection checks the model-fix satellite:
// with a provider whose uplink and downlink traces differ, a transfer
// towards the provider rides the fast downlink while a transfer from it
// pays the slow uplink — the directions must stop being charged the same.
func TestShapedAsymmetricLinkChargesDirection(t *testing.T) {
	// Requester at 10 Mbps both ways; provider 0 uplink 1 Mbps, downlink
	// 10 Mbps. No I/O cost, so wire time dominates.
	asym := network.Link{Trace: network.Constant(1), Down: network.Constant(10)}
	net := &network.Network{
		Requester: network.Link{Trace: network.Constant(10)},
		Providers: []network.Link{asym},
	}
	const timeScale = 0.5
	const payload = 12_500 // 0.1 model sec at 1 Mbps, 0.01 at 10 Mbps
	tr := NewShaped(NewInproc(), net, timeScale, 1, 0)

	down := shapedPair(t, tr, Requester, 0) // requester -> provider: downlink
	downSec := timeSend(t, down, testMessage(payload))
	up := shapedPair(t, tr, 0, Requester) // provider -> requester: uplink
	upSec := timeSend(t, up, testMessage(payload))

	wantUp := 0.1 * timeScale
	wantDown := 0.01 * timeScale
	if upSec < 0.8*wantUp {
		t.Errorf("uplink send took %.3fs, want >= ~%.3fs (slow uplink)", upSec, wantUp)
	}
	if downSec > 0.5*wantUp {
		t.Errorf("downlink send took %.3fs — charged like the uplink (want ~%.3fs)", downSec, wantDown)
	}
}

// TestShapedPostCodecCharging checks ChargePostCodec charges the bytes the
// codec puts on the wire, not the raw payload: an int8-quantizing tcp
// stack moves 4x fewer bytes, so the charged latency drops ~4x, while the
// default pre-codec charging is oblivious to the codec.
func TestShapedPostCodecCharging(t *testing.T) {
	net := &network.Network{
		Requester: network.Link{Trace: network.Constant(1)},
		Providers: []network.Link{{Trace: network.Constant(1)}},
	}
	const timeScale = 0.5
	const payload = 50_000 // 0.4 model sec raw at 1 Mbps; 0.1 quantized
	msg := testMessage(payload)

	pre := NewShaped(NewPooledTCP(Quant(QuantInt8, nil), nil), net, timeScale, 1, 0)
	preSec := timeSend(t, shapedPair(t, pre, Requester, 0), msg)

	post := NewShaped(NewPooledTCP(Quant(QuantInt8, nil), nil), net, timeScale, 1, 0).ChargePostCodec()
	msg2 := testMessage(payload) // Send hands payload ownership to the pool
	postSec := timeSend(t, shapedPair(t, post, Requester, 0), msg2)

	wantPre := 0.4 * timeScale
	wantPost := 0.1 * timeScale
	if preSec < 0.8*wantPre {
		t.Errorf("pre-codec charge took %.3fs, want >= ~%.3fs (raw bytes)", preSec, wantPre)
	}
	if postSec < 0.8*wantPost || postSec > 0.5*wantPre {
		t.Errorf("post-codec charge took %.3fs, want ~%.3fs (quantized bytes)", postSec, wantPost)
	}
}

// TestShapedPostCodecFallsBackWithoutWireCodec checks an inner transport
// with no wire codec (inproc: payloads cross by reference) silently keeps
// pre-codec charging.
func TestShapedPostCodecFallsBackWithoutWireCodec(t *testing.T) {
	net := &network.Network{
		Requester: network.Link{Trace: network.Constant(1)},
		Providers: []network.Link{{Trace: network.Constant(1)}},
	}
	const timeScale = 0.5
	tr := NewShaped(NewInproc(), net, timeScale, 1, 0).ChargePostCodec()
	sec := timeSend(t, shapedPair(t, tr, Requester, 0), testMessage(12_500))
	want := 0.1 * timeScale
	if sec < 0.8*want {
		t.Errorf("fallback send took %.3fs, want >= ~%.3fs (raw bytes)", sec, want)
	}
}
