package transport

// Wire-level Volume sentinels. Non-negative Volume values are data
// generations; VolInput marks the input image; anything below VolInput is a
// control verb. Every control value used anywhere in the module must be
// named here (or aliased from here) — distlint's sentinel analyzer rejects
// raw literals <= -2 at use sites so the verb space stays auditable in this
// one file.
const (
	// VolInput marks a chunk carrying rows of the input image rather than
	// an intermediate volume.
	VolInput = -1

	// VolHeartbeat marks a liveness beat on a provider's result link.
	// Beats reuse the chunk framing (Image = provider index, Lo =
	// deployment epoch) so liveness rides the same path as real results.
	VolHeartbeat = -2
)
