package transport

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
)

// Codec turns a byte stream into a Message stream. Encoders and decoders
// are stateful per connection (gob in particular interleaves type
// descriptors into the stream), so a Codec is a factory: each connection
// gets its own encoder/decoder pair over its own stream.
type Codec interface {
	Name() string
	NewEncoder(w io.Writer) Encoder
	NewDecoder(r io.Reader) Decoder
}

// Encoder writes messages to one stream. Callers serialise access.
type Encoder interface {
	Encode(m *Message) error
}

// Decoder reads messages from one stream. Callers serialise access.
type Decoder interface {
	Decode(m *Message) error
}

// pooledCodec is implemented by codecs whose decoders can draw payload
// buffers from a transport's payload pool instead of allocating per
// message. Gob stays outside: its decoder allocates internally.
type pooledCodec interface {
	NewPooledDecoder(r io.Reader, pool *Pool) Decoder
}

// ---------------------------------------------------------------------------
// Gob: the legacy wire format — one gob stream per connection, every
// message (data and control alike) gob-encoded. Retained as the
// compatibility codec and as the benchmark baseline.

type gobCodec struct{}

// Gob returns the gob stream codec (the pre-transport wire format).
func Gob() Codec { return gobCodec{} }

func (gobCodec) Name() string                   { return "gob" }
func (gobCodec) NewEncoder(w io.Writer) Encoder { return gobEncoder{enc: gob.NewEncoder(w)} }
func (gobCodec) NewDecoder(r io.Reader) Decoder { return gobDecoder{dec: gob.NewDecoder(r)} }

type gobEncoder struct{ enc *gob.Encoder }

func (e gobEncoder) Encode(m *Message) error { return e.enc.Encode(m) }

type gobDecoder struct{ dec *gob.Decoder }

func (d gobDecoder) Decode(m *Message) error { return d.dec.Decode(m) }

// ---------------------------------------------------------------------------
// Binary: the hot-path chunk format. Data chunks — the float32 row payloads
// that dominate wire traffic — travel as a fixed 21-byte little-endian
// header (image, volume, lo, hi, payload length) followed by the raw
// payload, so encoding is two buffered writes and decoding is two
// io.ReadFulls with zero reflection. Control messages (Volume < -1:
// heartbeats and future verbs) stay on gob inside a length-prefixed frame,
// keeping them free to grow fields the fixed header cannot carry. A one-byte
// tag distinguishes the two frame kinds.

const (
	tagChunk   = 0x01
	tagControl = 0x02

	chunkHeaderLen = 1 + 4 + 4 + 4 + 4 + 4 // tag + image + volume + lo + hi + len

	// maxFrame bounds a decoded payload or control frame so a corrupt
	// stream cannot request an absurd allocation.
	maxFrame = 1 << 30
)

type binaryCodec struct{}

// Binary returns the length-prefixed binary chunk codec with gob fallback
// for control messages.
func Binary() Codec { return binaryCodec{} }

func (binaryCodec) Name() string { return "binary" }

func (binaryCodec) NewEncoder(w io.Writer) Encoder {
	return &binaryEncoder{w: w}
}

func (binaryCodec) NewDecoder(r io.Reader) Decoder {
	return &binaryDecoder{r: r}
}

func (binaryCodec) NewPooledDecoder(r io.Reader, pool *Pool) Decoder {
	return &binaryDecoder{r: r, pool: pool}
}

type binaryEncoder struct {
	w    io.Writer
	hdr  [chunkHeaderLen]byte
	ctrl bytes.Buffer
}

func (e *binaryEncoder) Encode(m *Message) error {
	if m.control() {
		// Control path: gob the whole message into a tagged,
		// length-prefixed frame. A fresh gob encoder per frame keeps the
		// frame self-describing (no cross-frame stream state); control
		// traffic is a few beats per second, so the cost is irrelevant.
		e.ctrl.Reset()
		if err := gob.NewEncoder(&e.ctrl).Encode(m); err != nil {
			return err
		}
		e.hdr[0] = tagControl
		binary.LittleEndian.PutUint32(e.hdr[1:5], uint32(e.ctrl.Len()))
		if _, err := e.w.Write(e.hdr[:5]); err != nil {
			return err
		}
		_, err := e.w.Write(e.ctrl.Bytes())
		return err
	}
	e.hdr[0] = tagChunk
	binary.LittleEndian.PutUint32(e.hdr[1:5], m.Image)
	binary.LittleEndian.PutUint32(e.hdr[5:9], uint32(m.Volume))
	binary.LittleEndian.PutUint32(e.hdr[9:13], uint32(m.Lo))
	binary.LittleEndian.PutUint32(e.hdr[13:17], uint32(m.Hi))
	binary.LittleEndian.PutUint32(e.hdr[17:21], uint32(len(m.Payload)))
	if _, err := e.w.Write(e.hdr[:]); err != nil {
		return err
	}
	if len(m.Payload) == 0 {
		return nil
	}
	_, err := e.w.Write(m.Payload)
	return err
}

type binaryDecoder struct {
	r    io.Reader
	hdr  [chunkHeaderLen]byte
	pool *Pool // nil = allocate payload buffers per message
}

func (d *binaryDecoder) Decode(m *Message) error {
	if _, err := io.ReadFull(d.r, d.hdr[:1]); err != nil {
		return err
	}
	switch d.hdr[0] {
	case tagControl:
		if _, err := io.ReadFull(d.r, d.hdr[1:5]); err != nil {
			return err
		}
		n := binary.LittleEndian.Uint32(d.hdr[1:5])
		if n > maxFrame {
			return fmt.Errorf("transport: control frame of %d bytes exceeds limit", n)
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(d.r, buf); err != nil {
			return err
		}
		return gob.NewDecoder(bytes.NewReader(buf)).Decode(m)
	case tagChunk:
		if _, err := io.ReadFull(d.r, d.hdr[1:]); err != nil {
			return err
		}
		m.Image = binary.LittleEndian.Uint32(d.hdr[1:5])
		m.Volume = int32(binary.LittleEndian.Uint32(d.hdr[5:9]))
		m.Lo = int32(binary.LittleEndian.Uint32(d.hdr[9:13]))
		m.Hi = int32(binary.LittleEndian.Uint32(d.hdr[13:17]))
		n := binary.LittleEndian.Uint32(d.hdr[17:21])
		if n > maxFrame {
			return fmt.Errorf("transport: chunk payload of %d bytes exceeds limit", n)
		}
		if n == 0 {
			m.Payload = nil
			return nil
		}
		switch {
		case uint32(cap(m.Payload)) >= n:
			m.Payload = m.Payload[:n]
		case d.pool != nil:
			m.Payload = d.pool.Get(int(n))
		default:
			m.Payload = make([]byte, n)
		}
		_, err := io.ReadFull(d.r, m.Payload)
		return err
	default:
		return fmt.Errorf("transport: unknown frame tag 0x%02x", d.hdr[0])
	}
}
