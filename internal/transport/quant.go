package transport

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// QuantMode selects the element width of the quantizing codec.
type QuantMode uint8

const (
	// QuantInt8 stores each float32 as a signed 8-bit integer with one
	// per-chunk float32 scale (symmetric linear quantization): 4x smaller,
	// absolute error <= scale/2 = maxAbs/254 per element.
	QuantInt8 QuantMode = 1
	// QuantFP16 stores each float32 as an IEEE 754 binary16: 2x smaller,
	// relative error <= 2^-11 for values in the half-precision range.
	QuantFP16 QuantMode = 2
)

// quantHeaderLen is the sub-header the quant codec prepends to each
// transformed payload: one byte packing the mode (low nibble) and the raw
// tail length (high nibble, 0-3 — payload bytes beyond the last full
// float32, carried verbatim), then the float32 scale (int8 mode; zero for
// fp16, which needs none).
const quantHeaderLen = 1 + 4

// Quant returns a codec that quantizes data-chunk payloads — interpreted as
// little-endian float32 activation rows, which is what every runtime chunk
// carries — before handing them to inner (nil = Binary()) for framing.
// Control messages and empty payloads pass through untouched. Composing
// with Deflate (Quant(QuantInt8, Deflate())) quantizes first and compresses
// the quantized bytes, stacking the 4x quantization shrink with whatever
// entropy deflate still finds. Quantization is lossy: the decoded payload
// has the original length but dequantized values.
func Quant(mode QuantMode, inner Codec) Codec {
	if mode != QuantInt8 && mode != QuantFP16 {
		panic(fmt.Sprintf("transport: unknown quant mode %d", mode))
	}
	if inner == nil {
		inner = Binary()
	}
	return quantCodec{mode: mode, inner: inner}
}

type quantCodec struct {
	mode  QuantMode
	inner Codec
}

func (c quantCodec) Name() string {
	name := "quant8"
	if c.mode == QuantFP16 {
		name = "quant16"
	}
	if c.inner.Name() != "binary" {
		name += "+" + c.inner.Name()
	}
	return name
}

func (c quantCodec) NewEncoder(w io.Writer) Encoder {
	return &quantEncoder{mode: c.mode, inner: c.inner.NewEncoder(w)}
}

func (c quantCodec) NewDecoder(r io.Reader) Decoder {
	return &quantDecoder{mode: c.mode, inner: c.inner.NewDecoder(r)}
}

func (c quantCodec) NewPooledDecoder(r io.Reader, pool *Pool) Decoder {
	var inner Decoder
	if pc, ok := c.inner.(pooledCodec); ok {
		inner = pc.NewPooledDecoder(r, pool)
	} else {
		inner = c.inner.NewDecoder(r)
	}
	return &quantDecoder{mode: c.mode, inner: inner, pool: pool}
}

// wireFrac reports the codec's steady-state payload shrink for the
// simulator's wire model: the quantized element fraction times whatever the
// inner codec claims (deflate conservatively claims 1 — its ratio is
// data-dependent, and promising the planner bytes it might not save is the
// wrong direction to err).
func (c quantCodec) wireFrac() float64 {
	frac := 0.25
	if c.mode == QuantFP16 {
		frac = 0.5
	}
	return frac * WireFrac(c.inner)
}

// wireFracCodec is implemented by codecs that shrink data payloads by a
// predictable fraction the simulator can model.
type wireFracCodec interface{ wireFrac() float64 }

// WireFrac returns the fraction of raw payload bytes the codec puts on the
// wire in steady state (1 for codecs with no guaranteed shrink — binary,
// gob, and deflate, whose ratio is data-dependent). The simulator's
// PipelineConfig.WireFrac consumes this so predictions and the shaped
// runtime charge the same bytes.
func WireFrac(c Codec) float64 {
	if w, ok := c.(wireFracCodec); ok {
		return w.wireFrac()
	}
	return 1
}

// CalibratedWireFrac is WireFrac with deflate's measured compression ratio
// folded in: where the static fraction conservatively charges deflate 1,
// this substitutes the ratio the codec's DeflateStats actually observed on
// this process's traffic, composing through quant wrappers the same way
// wireFrac does. measured is false — and the value identical to
// WireFrac(c) — until some deflate payload has been compressed, so callers
// can use the value unconditionally and report whether it was calibrated.
func CalibratedWireFrac(c Codec) (frac float64, measured bool) {
	switch cc := c.(type) {
	case deflateCodec:
		return cc.stats.Ratio()
	case quantCodec:
		inner, ok := CalibratedWireFrac(cc.inner)
		f := 0.25
		if cc.mode == QuantFP16 {
			f = 0.5
		}
		return f * inner, ok
	}
	return WireFrac(c), false
}

type quantEncoder struct {
	mode  QuantMode
	inner Encoder
	buf   []byte // reused transform scratch; grows to the largest chunk seen
}

func (e *quantEncoder) Encode(m *Message) error {
	if m.control() || len(m.Payload) == 0 {
		return e.inner.Encode(m)
	}
	p := m.Payload
	n := len(p) / 4
	tail := len(p) % 4
	elem := 1
	if e.mode == QuantFP16 {
		elem = 2
	}
	need := quantHeaderLen + n*elem + tail
	if cap(e.buf) < need {
		e.buf = make([]byte, need)
	}
	out := e.buf[:need]
	out[0] = byte(e.mode) | byte(tail)<<4

	switch e.mode {
	case QuantInt8:
		// Symmetric linear quantization: one scale per chunk, derived from
		// the largest finite magnitude. NaN quantizes to 0 and ±Inf clamps
		// to the extremes, so a poisoned activation cannot poison the scale.
		var maxAbs float32
		for i := 0; i < n; i++ {
			v := math.Float32frombits(binary.LittleEndian.Uint32(p[i*4:]))
			if a := abs32(v); a > maxAbs && !isInf32(a) {
				maxAbs = a
			}
		}
		scale := maxAbs / 127
		binary.LittleEndian.PutUint32(out[1:5], math.Float32bits(scale))
		q := out[quantHeaderLen : quantHeaderLen+n]
		if scale == 0 {
			for i := range q {
				q[i] = 0
			}
		} else {
			inv := 1 / scale
			for i := 0; i < n; i++ {
				v := math.Float32frombits(binary.LittleEndian.Uint32(p[i*4:]))
				q[i] = byte(quantize8(v, inv))
			}
		}
	case QuantFP16:
		binary.LittleEndian.PutUint32(out[1:5], 0)
		q := out[quantHeaderLen:]
		for i := 0; i < n; i++ {
			bits := binary.LittleEndian.Uint32(p[i*4:])
			binary.LittleEndian.PutUint16(q[i*2:], f32to16(bits))
		}
	}
	copy(out[need-tail:], p[len(p)-tail:])

	// Swap the quantized buffer in for framing and restore the caller's
	// payload afterwards (Encode's contract allows payload rewriting — the
	// transports capture the payload before encoding — but restoring keeps
	// this encoder reusable under any caller, and unlike framing a copy of
	// the message it keeps the encode hot path allocation-free).
	m.Payload = out
	err := e.inner.Encode(m)
	m.Payload = p
	return err
}

// quantize8 maps v to a clamped int8 level. NaN maps to 0.
func quantize8(v, inv float32) int8 {
	if v != v { // NaN
		return 0
	}
	q := v * inv
	switch {
	case q >= 127:
		return 127
	case q <= -127:
		return -127
	case q >= 0:
		return int8(q + 0.5)
	default:
		return int8(q - 0.5)
	}
}

type quantDecoder struct {
	mode  QuantMode
	inner Decoder
	pool  *Pool
}

func (d *quantDecoder) Decode(m *Message) error {
	if err := d.inner.Decode(m); err != nil {
		return err
	}
	if m.control() || len(m.Payload) == 0 {
		return nil
	}
	// Validate before trusting any field: the frame may be garbage (fuzzed,
	// corrupted, or produced by a peer on a different codec). Every reject
	// is an error, never a panic.
	enc := m.Payload
	if len(enc) < quantHeaderLen {
		return fmt.Errorf("transport: quant frame of %d bytes is shorter than the %d-byte sub-header", len(enc), quantHeaderLen)
	}
	mode := QuantMode(enc[0] & 0x0f)
	tail := int(enc[0] >> 4)
	if mode != d.mode {
		return fmt.Errorf("transport: quant frame mode %d does not match codec mode %d", mode, d.mode)
	}
	if tail > 3 {
		return fmt.Errorf("transport: quant frame tail length %d exceeds 3", tail)
	}
	elem := 1
	if mode == QuantFP16 {
		elem = 2
	}
	body := len(enc) - quantHeaderLen - tail
	if body < 0 || body%elem != 0 {
		return fmt.Errorf("transport: quant frame body of %d bytes is not a whole number of %d-byte elements", body, elem)
	}
	n := body / elem
	outLen := n*4 + tail
	if outLen > maxFrame {
		return fmt.Errorf("transport: quant payload of %d bytes exceeds limit", outLen)
	}
	scale := math.Float32frombits(binary.LittleEndian.Uint32(enc[1:5]))
	if mode == QuantInt8 && (isInf32(scale) || scale != scale || scale < 0) {
		return fmt.Errorf("transport: quant frame carries invalid scale %v", scale)
	}

	out := d.pool.Get(outLen)
	q := enc[quantHeaderLen : quantHeaderLen+n*elem]
	switch mode {
	case QuantInt8:
		for i := 0; i < n; i++ {
			v := float32(int8(q[i])) * scale
			binary.LittleEndian.PutUint32(out[i*4:], math.Float32bits(v))
		}
	case QuantFP16:
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint32(out[i*4:], f16to32(binary.LittleEndian.Uint16(q[i*2:])))
		}
	}
	copy(out[n*4:], enc[len(enc)-tail:])
	m.Payload = out
	// The encoded buffer came from the pool when the inner decoder is
	// pooled; it is dead now that the payload is dequantized.
	d.pool.Put(enc)
	return nil
}

func abs32(v float32) float32 {
	return math.Float32frombits(math.Float32bits(v) &^ (1 << 31))
}

func isInf32(v float32) bool {
	return math.Float32bits(v)&0x7fffffff == 0x7f800000
}

// f32to16 converts float32 bits to IEEE binary16 bits with round-to-nearest
// (even in the normal range). Overflow saturates to ±Inf, NaN stays NaN,
// and magnitudes below the half subnormal range flush to ±0.
func f32to16(b uint32) uint16 {
	sign := uint16((b >> 16) & 0x8000)
	abs := b & 0x7fffffff
	switch {
	case abs > 0x7f800000: // NaN
		return sign | 0x7e00
	case abs >= 0x47800000: // >= 2^16: overflow (and ±Inf) saturates to Inf
		return sign | 0x7c00
	case abs >= 0x38800000: // normal half range [2^-14, 2^16)
		// Rebias the exponent and round the 13 dropped mantissa bits to
		// nearest-even; a mantissa carry correctly bumps the exponent (up
		// to Inf at the top of the range).
		abs += 0xfff + ((abs >> 13) & 1)
		return sign | uint16((abs-0x38000000)>>13)
	case abs >= 0x33000001: // subnormal half range
		exp := abs >> 23 // 102..112
		man := (abs & 0x7fffff) | 0x800000
		shift := 126 - exp // value = man * 2^(exp-150); half ulp = 2^-24
		return sign | uint16((man+(1<<(shift-1)))>>shift)
	default: // underflow to ±0
		return sign
	}
}

// f16to32 converts IEEE binary16 bits to float32 bits (exact — every half
// value is representable in single precision).
func f16to32(h uint16) uint32 {
	sign := uint32(h&0x8000) << 16
	exp := uint32(h >> 10 & 0x1f)
	man := uint32(h & 0x3ff)
	switch {
	case exp == 0x1f: // Inf / NaN
		return sign | 0x7f800000 | man<<13
	case exp != 0: // normal
		return sign | (exp+112)<<23 | man<<13
	case man != 0: // subnormal: normalize into a float32 normal
		e := uint32(113)
		for man&0x400 == 0 {
			man <<= 1
			e--
		}
		return sign | e<<23 | (man&0x3ff)<<13
	default: // ±0
		return sign
	}
}
