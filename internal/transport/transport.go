// Package transport is the runtime's pluggable wire stack: framed message
// connections between the requester and the service providers. The runtime
// (internal/runtime) speaks only the Transport/Conn/Listener interfaces
// here, so the same deployment code runs over real TCP sockets, over pure
// in-process channels (fast, race-clean tests), over trace-shaped links
// that charge the simulator's WiFi latency to every payload byte, or over
// a chaos decorator that deterministically drops, delays and partitions
// traffic for fault-injection tests.
//
// Stack composition is by wrapping: Shaped and Chaos decorate any inner
// transport, so "shaped inproc" (the simulator's network without socket
// timing noise) and "chaos tcp" are both one constructor call.
package transport

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// Requester is the device index of the service requester, mirroring
// network.Requester and runtime.RequesterID. Transports that need endpoint
// identities (shaped, chaos) accept it like any provider index.
const Requester = -1

// Message is the framed wire unit: rows [Lo,Hi) of generation Volume
// (VolInput = the input image, more negative values are control messages
// such as heartbeats; see sentinels.go) for one image. Payload carries the
// activation bytes.
type Message struct {
	Image   uint32
	Volume  int32
	Lo, Hi  int32
	Payload []byte
}

// control reports whether the message is a control message (heartbeats and
// future verbs) rather than a data chunk. Codecs keep control messages on
// the flexible gob path and reserve the fixed binary framing for the hot
// data path.
func (m *Message) control() bool { return m.Volume < VolInput }

// Conn is one directed framed connection. Send is safe for concurrent use;
// Recv must be called from a single reader goroutine. Closing either end
// fails subsequent Sends on both and makes Recv return an error once any
// already-delivered messages are drained.
type Conn interface {
	Send(m Message) error
	Recv() (Message, error)
	Close() error
}

// Listener accepts inbound connections for one endpoint. Addr returns the
// string other endpoints pass to Transport.Dial; its format is
// transport-specific and opaque to callers.
type Listener interface {
	Accept() (Conn, error)
	Addr() string
	Close() error
}

// Transport creates listeners and dials peers. `self` is the caller's
// device index (Requester for the service requester); plain transports
// (tcp, inproc) ignore it, while decorators (shaped, chaos) use it to
// attribute traffic to the right link.
type Transport interface {
	Listen(self int) (Listener, error)
	Dial(self int, addr string) (Conn, error)
	Name() string
}

// ErrClosed is returned for operations on a closed connection or listener.
var ErrClosed = errors.New("transport: closed")

// encodeDevAddr prefixes an inner address with the listener's device index
// so decorating transports can recover the destination endpoint at Dial
// time without a side-channel address registry.
func encodeDevAddr(dev int, addr string) string {
	return strconv.Itoa(dev) + "|" + addr
}

// splitDevAddr reverses encodeDevAddr.
func splitDevAddr(addr string) (int, string, error) {
	devSpec, rest, ok := strings.Cut(addr, "|")
	if !ok {
		return 0, "", fmt.Errorf("transport: address %q lacks a device prefix", addr)
	}
	dev, err := strconv.Atoi(devSpec)
	if err != nil {
		return 0, "", fmt.Errorf("transport: bad device in address %q: %v", addr, err)
	}
	return dev, rest, nil
}
