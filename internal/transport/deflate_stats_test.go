package transport

import (
	"bytes"
	"testing"
)

// compressiblePayload is float32-aligned and highly repetitive, so deflate
// achieves a ratio well under 1 on it.
func compressiblePayload(n int) []byte {
	p := make([]byte, n)
	for i := range p {
		p[i] = byte(i % 8)
	}
	return p
}

func encodeThrough(t *testing.T, c Codec, payload []byte) {
	t.Helper()
	var buf bytes.Buffer
	m := Message{Image: 1, Volume: 2, Lo: 0, Hi: 8, Payload: payload}
	if err := c.NewEncoder(&buf).Encode(&m); err != nil {
		t.Fatal(err)
	}
}

// TestDeflateRatioMeasured pins the calibration lifecycle: a fresh codec
// reports the conservative unmeasured fraction of 1; once a data payload
// has been compressed it reports the byte-weighted measured ratio.
func TestDeflateRatioMeasured(t *testing.T) {
	c := Deflate()
	if frac, ok := CalibratedWireFrac(c); ok || frac != 1 {
		t.Fatalf("fresh deflate: CalibratedWireFrac = %v, %v, want 1, false", frac, ok)
	}
	encodeThrough(t, c, compressiblePayload(4096))
	frac, ok := CalibratedWireFrac(c)
	if !ok {
		t.Fatal("after traffic the ratio must be measured")
	}
	if !(frac > 0 && frac < 1) {
		t.Errorf("measured ratio %v for a highly compressible payload, want (0, 1)", frac)
	}
	// The measurement is byte-weighted across every encode of the codec
	// value, so more traffic keeps it in range.
	encodeThrough(t, c, compressiblePayload(8192))
	if frac2, ok := CalibratedWireFrac(c); !ok || !(frac2 > 0 && frac2 < 1) {
		t.Errorf("accumulated ratio %v, %v out of range", frac2, ok)
	}
}

// TestDeflateStatsPerCodecValue: each Deflate() value owns its counters —
// one shaped fidelity cell's traffic must not calibrate another's.
func TestDeflateStatsPerCodecValue(t *testing.T) {
	c1, c2 := Deflate(), Deflate()
	encodeThrough(t, c1, compressiblePayload(4096))
	if _, ok := CalibratedWireFrac(c1); !ok {
		t.Error("encoded codec must be measured")
	}
	if frac, ok := CalibratedWireFrac(c2); ok || frac != 1 {
		t.Errorf("untouched codec reports %v, %v — stats leaked across Deflate() values", frac, ok)
	}
}

// TestCalibratedWireFracComposition: quantization's deterministic fraction
// multiplies the measured deflate ratio of its inner codec, and control
// messages or unmeasured stacks fall back to the static WireFrac.
func TestCalibratedWireFracComposition(t *testing.T) {
	d := Deflate()
	q := Quant(QuantInt8, d)
	if frac, ok := CalibratedWireFrac(q); ok || frac != 0.25 {
		t.Fatalf("unmeasured quant+deflate: got %v, %v, want static 0.25, false", frac, ok)
	}
	encodeThrough(t, q, compressiblePayload(4096))
	ratio, ok := CalibratedWireFrac(d)
	if !ok {
		t.Fatal("the composed encode must feed the inner deflate stats")
	}
	frac, ok := CalibratedWireFrac(q)
	if !ok || frac != 0.25*ratio {
		t.Errorf("quant8+deflate = %v, %v, want 0.25 x measured %v", frac, ok, ratio)
	}
	q16 := Quant(QuantFP16, d)
	if frac, ok := CalibratedWireFrac(q16); !ok || frac != 0.5*ratio {
		t.Errorf("quant16+deflate = %v, %v, want 0.5 x measured %v", frac, ok, ratio)
	}
	// Codecs with no deflate anywhere stay on the static table, unmeasured.
	for _, c := range []Codec{Binary(), Quant(QuantInt8, nil)} {
		frac, ok := CalibratedWireFrac(c)
		if ok || frac != WireFrac(c) {
			t.Errorf("%s: got %v, %v, want static %v, false", c.Name(), frac, ok, WireFrac(c))
		}
	}
}
