package transport

import (
	"bytes"
	"compress/flate"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
)

// Deflate returns a codec that DEFLATE-compresses data-chunk payloads
// behind the existing binary framing: the compressed bytes travel as an
// ordinary binary chunk frame (the header's length field carries the
// compressed size), so the wire format needs no new frame kind and
// control messages pass through the gob path untouched. Activation rows
// are float32 and compress well; on low-bandwidth shaped links the CPU
// spent here buys back wire seconds — see DESIGN.md for when the trade
// wins. The flate level is BestSpeed: the codec sits on the serving hot
// path, where ratio beyond "good enough" is worth less than encode time.
//
// Compressor and decompressor state is shared across all connections
// through package-level sync.Pools: a flate.Writer is ~330 KB and a
// decompressor ~50 KB, so per-connection private instances made every
// dialled link pay that once — on an n-provider cluster with n^2 links,
// megabytes of dead weight pinned by idle conns. Checked out per message
// and returned immediately, a handful of instances now serve any number
// of connections. (The remaining per-message decode allocations are the
// stdlib decompressor's per-block Huffman tables, which flate rebuilds
// from scratch on every dynamic block — not codec state, and not
// poolable from outside the stdlib.)
func Deflate() Codec { return deflateCodec{inner: Binary(), stats: &DeflateStats{}} }

// DeflateStats accumulates the measured compression ratio of one Deflate()
// codec value: every connection's encoder built from that value folds its
// per-message raw and compressed payload byte counts into the shared
// counters, so Ratio is the byte-weighted mean ratio across all of the
// codec's conns. The simulator's static WireFrac conservatively charges
// deflate a fraction of 1 (the ratio is data-dependent); once traffic has
// flowed, CalibratedWireFrac substitutes this measurement so shaped
// deflate predictions tighten to the bytes actually sent.
type DeflateStats struct {
	raw        atomic.Uint64
	compressed atomic.Uint64
}

func (s *DeflateStats) add(raw, compressed int) {
	s.raw.Add(uint64(raw))
	s.compressed.Add(uint64(compressed))
}

// Ratio returns compressed/raw payload bytes over everything encoded so
// far. ok is false — and the ratio 1, the static conservative fraction —
// until at least one data payload has been compressed.
func (s *DeflateStats) Ratio() (ratio float64, ok bool) {
	raw := s.raw.Load()
	if raw == 0 {
		return 1, false
	}
	return float64(s.compressed.Load()) / float64(raw), true
}

type deflateCodec struct {
	inner Codec
	stats *DeflateStats
}

func (deflateCodec) Name() string { return "deflate" }

func (c deflateCodec) NewEncoder(w io.Writer) Encoder {
	return &deflateEncoder{inner: c.inner.NewEncoder(w), stats: c.stats}
}

func (c deflateCodec) NewDecoder(r io.Reader) Decoder {
	return &deflateDecoder{inner: c.inner.NewDecoder(r)}
}

func (c deflateCodec) NewPooledDecoder(r io.Reader, pool *Pool) Decoder {
	var inner Decoder
	if pc, ok := c.inner.(pooledCodec); ok {
		inner = pc.NewPooledDecoder(r, pool)
	} else {
		inner = c.inner.NewDecoder(r)
	}
	return &deflateDecoder{inner: inner, pool: pool}
}

// flateWriters / flateReaders share compressor and decompressor state
// across every deflate encoder and decoder in the process. New() stays nil
// so a miss is visible as a nil and constructed with the right level in
// one place.
var flateWriters = sync.Pool{}
var flateReaders = sync.Pool{}

func getFlateWriter(w io.Writer) (*flate.Writer, error) {
	if fw, ok := flateWriters.Get().(*flate.Writer); ok {
		fw.Reset(w)
		return fw, nil
	}
	return flate.NewWriter(w, flate.BestSpeed)
}

func putFlateWriter(fw *flate.Writer) { flateWriters.Put(fw) }

func getFlateReader(r io.Reader) (io.ReadCloser, error) {
	if fr, ok := flateReaders.Get().(io.ReadCloser); ok {
		if err := fr.(flate.Resetter).Reset(r, nil); err != nil {
			return nil, err
		}
		return fr, nil
	}
	return flate.NewReader(r), nil
}

func putFlateReader(fr io.ReadCloser) { flateReaders.Put(fr) }

type deflateEncoder struct {
	inner Encoder
	buf   bytes.Buffer
	stats *DeflateStats
}

func (e *deflateEncoder) Encode(m *Message) error {
	if m.control() || len(m.Payload) == 0 {
		return e.inner.Encode(m)
	}
	e.buf.Reset()
	fw, err := getFlateWriter(&e.buf)
	if err != nil {
		return err
	}
	if _, err := fw.Write(m.Payload); err != nil {
		return err
	}
	if err := fw.Close(); err != nil {
		return err
	}
	putFlateWriter(fw)
	if e.stats != nil {
		e.stats.add(len(m.Payload), e.buf.Len())
	}
	// Frame a copy of the message so the caller's payload field — whose
	// ownership the Send contract may hand to a pool — is never rewritten.
	tmp := *m
	tmp.Payload = e.buf.Bytes()
	return e.inner.Encode(&tmp)
}

type deflateDecoder struct {
	inner Decoder
	br    bytes.Reader
	out   bytes.Buffer
	pool  *Pool
}

func (d *deflateDecoder) Decode(m *Message) error {
	if err := d.inner.Decode(m); err != nil {
		return err
	}
	if m.control() || len(m.Payload) == 0 {
		return nil
	}
	compressed := m.Payload
	d.br.Reset(compressed)
	fr, err := getFlateReader(&d.br)
	if err != nil {
		return err
	}
	d.out.Reset()
	if _, err := d.out.ReadFrom(fr); err != nil {
		return fmt.Errorf("transport: deflate payload: %w", err)
	}
	putFlateReader(fr)
	buf := d.pool.Get(d.out.Len())
	copy(buf, d.out.Bytes())
	m.Payload = buf
	// The compressed buffer came from the pool when the inner decoder is
	// pooled; it is dead now that the payload is inflated.
	d.pool.Put(compressed)
	return nil
}
