package transport

import (
	"bytes"
	"compress/flate"
	"fmt"
	"io"
)

// Deflate returns a codec that DEFLATE-compresses data-chunk payloads
// behind the existing binary framing: the compressed bytes travel as an
// ordinary binary chunk frame (the header's length field carries the
// compressed size), so the wire format needs no new frame kind and
// control messages pass through the gob path untouched. Activation rows
// are float32 and compress well; on low-bandwidth shaped links the CPU
// spent here buys back wire seconds — see DESIGN.md for when the trade
// wins. The flate level is BestSpeed: the codec sits on the serving hot
// path, where ratio beyond "good enough" is worth less than encode time.
func Deflate() Codec { return deflateCodec{inner: Binary()} }

type deflateCodec struct{ inner Codec }

func (deflateCodec) Name() string { return "deflate" }

func (c deflateCodec) NewEncoder(w io.Writer) Encoder {
	return &deflateEncoder{inner: c.inner.NewEncoder(w)}
}

func (c deflateCodec) NewDecoder(r io.Reader) Decoder {
	return &deflateDecoder{inner: c.inner.NewDecoder(r)}
}

func (c deflateCodec) NewPooledDecoder(r io.Reader, pool *Pool) Decoder {
	var inner Decoder
	if pc, ok := c.inner.(pooledCodec); ok {
		inner = pc.NewPooledDecoder(r, pool)
	} else {
		inner = c.inner.NewDecoder(r)
	}
	return &deflateDecoder{inner: inner, pool: pool}
}

type deflateEncoder struct {
	inner Encoder
	fw    *flate.Writer
	buf   bytes.Buffer
}

func (e *deflateEncoder) Encode(m *Message) error {
	if m.control() || len(m.Payload) == 0 {
		return e.inner.Encode(m)
	}
	e.buf.Reset()
	if e.fw == nil {
		w, err := flate.NewWriter(&e.buf, flate.BestSpeed)
		if err != nil {
			return err
		}
		e.fw = w
	} else {
		e.fw.Reset(&e.buf)
	}
	if _, err := e.fw.Write(m.Payload); err != nil {
		return err
	}
	if err := e.fw.Close(); err != nil {
		return err
	}
	// Frame a copy of the message so the caller's payload field — whose
	// ownership the Send contract may hand to a pool — is never rewritten.
	tmp := *m
	tmp.Payload = e.buf.Bytes()
	return e.inner.Encode(&tmp)
}

type deflateDecoder struct {
	inner Decoder
	fr    io.ReadCloser
	br    bytes.Reader
	out   bytes.Buffer
	pool  *Pool
}

func (d *deflateDecoder) Decode(m *Message) error {
	if err := d.inner.Decode(m); err != nil {
		return err
	}
	if m.control() || len(m.Payload) == 0 {
		return nil
	}
	compressed := m.Payload
	d.br.Reset(compressed)
	if d.fr == nil {
		d.fr = flate.NewReader(&d.br)
	} else if err := d.fr.(flate.Resetter).Reset(&d.br, nil); err != nil {
		return err
	}
	d.out.Reset()
	if _, err := d.out.ReadFrom(d.fr); err != nil {
		return fmt.Errorf("transport: deflate payload: %w", err)
	}
	buf := d.pool.Get(d.out.Len())
	copy(buf, d.out.Bytes())
	m.Payload = buf
	// The compressed buffer came from the pool when the inner decoder is
	// pooled; it is dead now that the payload is inflated.
	d.pool.Put(compressed)
	return nil
}
