package transport

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"
)

// activationPayload builds a little-endian float32 payload of n values in
// roughly [-8, 8) plus an optional raw tail — the shape of every runtime
// chunk the quant codec will see.
func activationPayload(n, tail int, seed uint32) []byte {
	buf := make([]byte, n*4+tail)
	x := seed | 1
	next := func() uint32 {
		x ^= x << 13
		x ^= x >> 17
		x ^= x << 5
		return x
	}
	for i := 0; i < n; i++ {
		v := float32(int32(next())) / float32(1<<28)
		binary.LittleEndian.PutUint32(buf[i*4:], math.Float32bits(v))
	}
	for i := n * 4; i < len(buf); i++ {
		buf[i] = byte(next())
	}
	return buf
}

func floats(payload []byte) []float32 {
	out := make([]float32, len(payload)/4)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(payload[i*4:]))
	}
	return out
}

func quantRoundtrip(t *testing.T, codec Codec, payload []byte) Message {
	t.Helper()
	var buf bytes.Buffer
	enc := codec.NewEncoder(&buf)
	dec := codec.NewDecoder(&buf)
	m := Message{Image: 7, Volume: 3, Lo: 10, Hi: 42, Payload: payload}
	if err := enc.Encode(&m); err != nil {
		t.Fatal(err)
	}
	var out Message
	if err := dec.Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Image != m.Image || out.Volume != m.Volume || out.Lo != m.Lo || out.Hi != m.Hi {
		t.Fatalf("header corrupted: got %+v", out)
	}
	if len(out.Payload) != len(payload) {
		t.Fatalf("decoded payload %d bytes, want %d", len(out.Payload), len(payload))
	}
	return out
}

// TestQuantInt8Accuracy pins the int8 error bound on a representative
// activation tensor: symmetric linear quantization with scale maxAbs/127
// has per-element absolute error at most scale/2 (round-to-nearest).
func TestQuantInt8Accuracy(t *testing.T) {
	payload := activationPayload(4096, 3, 0xabcd)
	out := quantRoundtrip(t, Quant(QuantInt8, nil), payload)
	in := floats(payload)
	got := floats(out.Payload)
	var maxAbs float64
	for _, v := range in {
		if a := math.Abs(float64(v)); a > maxAbs {
			maxAbs = a
		}
	}
	bound := maxAbs / 127 / 2 * (1 + 1e-6) // half a quantization step
	for i := range in {
		if err := math.Abs(float64(got[i] - in[i])); err > bound {
			t.Fatalf("element %d: |%g - %g| = %g exceeds int8 bound %g", i, got[i], in[i], err, bound)
		}
	}
	// The raw tail must survive verbatim (it is not float data).
	if !bytes.Equal(out.Payload[len(payload)-3:], payload[len(payload)-3:]) {
		t.Error("raw tail bytes corrupted")
	}
}

// TestQuantFP16Accuracy pins the fp16 error bound: round-to-nearest into a
// 10-bit mantissa keeps relative error under 2^-11 for values in the
// normal half range.
func TestQuantFP16Accuracy(t *testing.T) {
	payload := activationPayload(4096, 0, 0x1234)
	out := quantRoundtrip(t, Quant(QuantFP16, nil), payload)
	in := floats(payload)
	got := floats(out.Payload)
	const relBound = 1.0 / (1 << 11) * (1 + 1e-6)
	for i := range in {
		rel := math.Abs(float64(got[i]-in[i])) / math.Abs(float64(in[i]))
		if math.Abs(float64(in[i])) < 1e-3 { // near-zero: absolute bound instead
			if math.Abs(float64(got[i]-in[i])) > 1e-6 {
				t.Fatalf("element %d: near-zero |%g - %g| too large", i, got[i], in[i])
			}
			continue
		}
		if rel > relBound {
			t.Fatalf("element %d: relative error %g of %g exceeds fp16 bound %g", i, rel, in[i], relBound)
		}
	}
}

// TestQuantSpecialValues checks poisoned activations cannot poison the
// chunk: NaN quantizes to 0 (int8) or stays NaN (fp16), infinities clamp
// (int8) or stay infinite (fp16), and neither corrupts the scale.
func TestQuantSpecialValues(t *testing.T) {
	vals := []float32{1, -2, float32(math.NaN()), float32(math.Inf(1)), float32(math.Inf(-1)), 0.5, 1e9, -1e9}
	payload := make([]byte, len(vals)*4)
	for i, v := range vals {
		binary.LittleEndian.PutUint32(payload[i*4:], math.Float32bits(v))
	}
	got8 := floats(quantRoundtrip(t, Quant(QuantInt8, nil), payload).Payload)
	// Finite max magnitude is 1e9, so scale = 1e9/127.
	if got8[2] != 0 {
		t.Errorf("int8: NaN decoded to %g, want 0", got8[2])
	}
	if math.IsInf(float64(got8[3]), 0) || math.IsInf(float64(got8[4]), 0) {
		t.Errorf("int8: infinities must clamp to finite extremes, got %g / %g", got8[3], got8[4])
	}
	if got8[3] <= 0 || got8[4] >= 0 {
		t.Errorf("int8: clamped infinities lost their sign: %g / %g", got8[3], got8[4])
	}
	got16 := floats(quantRoundtrip(t, Quant(QuantFP16, nil), payload).Payload)
	if !math.IsNaN(float64(got16[2])) {
		t.Errorf("fp16: NaN decoded to %g, want NaN", got16[2])
	}
	if !math.IsInf(float64(got16[3]), 1) || !math.IsInf(float64(got16[4]), -1) {
		t.Errorf("fp16: infinities must survive, got %g / %g", got16[3], got16[4])
	}
	if !math.IsInf(float64(got16[6]), 1) { // 1e9 overflows half range -> +Inf
		t.Errorf("fp16: overflow decoded to %g, want +Inf", got16[6])
	}
}

// TestQuantFrameShrink checks the codec actually delivers its advertised
// wire fraction: the encoded frame for a large chunk must be ~1/4 (int8)
// or ~1/2 (fp16) of the raw payload, modulo the fixed headers.
func TestQuantFrameShrink(t *testing.T) {
	const n = 16384
	payload := activationPayload(n, 0, 99)
	for _, tc := range []struct {
		mode QuantMode
		frac float64
	}{{QuantInt8, 0.25}, {QuantFP16, 0.5}} {
		var buf bytes.Buffer
		enc := Quant(tc.mode, nil).NewEncoder(&buf)
		m := Message{Volume: 1, Payload: payload}
		if err := enc.Encode(&m); err != nil {
			t.Fatal(err)
		}
		want := chunkHeaderLen + quantHeaderLen + int(float64(len(payload))*tc.frac)
		if buf.Len() != want {
			t.Errorf("mode %d: frame %d bytes, want %d", tc.mode, buf.Len(), want)
		}
	}
}

// TestQuantControlAndEmptyPassThrough checks heartbeats (control messages)
// and empty payloads cross a quant stream untouched.
func TestQuantControlAndEmptyPassThrough(t *testing.T) {
	for _, mode := range []QuantMode{QuantInt8, QuantFP16} {
		var buf bytes.Buffer
		codec := Quant(mode, nil)
		enc := codec.NewEncoder(&buf)
		dec := codec.NewDecoder(&buf)
		// A verb below today's sentinel space: quant must pass any future
		// control frame through unquantized, not just heartbeats.
		const volFutureVerb = VolHeartbeat - 1
		msgs := []Message{
			{Image: 3, Volume: VolHeartbeat, Lo: 5},
			{Image: 9, Volume: 2, Lo: 1, Hi: 4},
			{Image: 1, Volume: volFutureVerb, Lo: 0, Hi: 0, Payload: []byte("verb")}, // control w/ payload
		}
		for _, m := range msgs {
			if err := enc.Encode(&m); err != nil {
				t.Fatal(err)
			}
		}
		for _, want := range msgs {
			var got Message
			if err := dec.Decode(&got); err != nil {
				t.Fatal(err)
			}
			if !sameMessage(got, want) {
				t.Errorf("mode %d: %+v round-tripped to %+v", mode, want, got)
			}
		}
	}
}

// TestQuantComposesWithDeflate checks the composed stack quantizes first
// and inflates back to the original length within the int8 bound, and that
// the composition is visible in the codec name.
func TestQuantComposesWithDeflate(t *testing.T) {
	codec := Quant(QuantInt8, Deflate())
	if codec.Name() != "quant8+deflate" {
		t.Fatalf("composed name %q, want quant8+deflate", codec.Name())
	}
	payload := activationPayload(2048, 1, 7)
	out := quantRoundtrip(t, codec, payload)
	in, got := floats(payload), floats(out.Payload)
	var maxAbs float64
	for _, v := range in {
		if a := math.Abs(float64(v)); a > maxAbs {
			maxAbs = a
		}
	}
	bound := maxAbs / 127 / 2 * (1 + 1e-6)
	for i := range in {
		if err := math.Abs(float64(got[i] - in[i])); err > bound {
			t.Fatalf("element %d: error %g exceeds bound %g", i, err, bound)
		}
	}
}

// TestQuantEncodeZeroAlloc pins the acceptance criterion: the encode hot
// path allocates nothing in steady state (after the scratch buffer has
// grown to the chunk size).
func TestQuantEncodeZeroAlloc(t *testing.T) {
	for _, mode := range []QuantMode{QuantInt8, QuantFP16} {
		enc := Quant(mode, nil).NewEncoder(&countWriter{})
		m := Message{Volume: 1, Payload: activationPayload(4096, 2, 5)}
		if err := enc.Encode(&m); err != nil { // warm the scratch buffer
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(50, func() {
			if err := enc.Encode(&m); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("mode %d: %v allocs/op on the encode hot path, want 0", mode, allocs)
		}
	}
}

// TestQuantDecodeRejectsGarbage drives the decoder with hand-corrupted
// frames; every one must fail with an error, never a panic, and never an
// absurd allocation.
func TestQuantDecodeRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"short frame":     {byte(QuantInt8)},
		"bad mode":        {0x0f, 0, 0, 0, 0, 1, 2, 3},
		"mode mismatch":   {byte(QuantFP16), 0, 0, 0, 0, 1, 2},
		"tail too long":   append([]byte{byte(QuantInt8) | 0x40}, make([]byte, 8)...),
		"tail gt body":    {byte(QuantInt8) | 0x30, 0, 0, 0, 0, 1},
		"nan scale":       append([]byte{byte(QuantInt8), 0, 0, 0xc0, 0x7f}, 1, 2, 3),
		"inf scale":       append([]byte{byte(QuantInt8), 0, 0, 0x80, 0x7f}, 1, 2, 3),
		"negative scale":  append([]byte{byte(QuantInt8), 0, 0, 0x80, 0xbf}, 1, 2, 3),
		"odd fp16 body":   {byte(QuantFP16), 0, 0, 0, 0, 1, 2, 3},
		"empty sub-frame": {},
	}
	for name, frame := range cases {
		mode := QuantInt8
		if name == "odd fp16 body" {
			mode = QuantFP16
		}
		// Ship the garbage as the payload of a legitimate binary chunk
		// frame, which is exactly what a corrupt or mismatched peer
		// produces.
		var buf bytes.Buffer
		if err := Binary().NewEncoder(&buf).Encode(&Message{Volume: 1, Payload: frame}); err != nil {
			t.Fatal(err)
		}
		var out Message
		err := Quant(mode, nil).NewDecoder(&buf).Decode(&out)
		if len(frame) == 0 {
			// An empty payload legitimately passes through.
			if err != nil {
				t.Errorf("%s: empty payload must pass, got %v", name, err)
			}
			continue
		}
		if err == nil {
			t.Errorf("%s: corrupt frame %x decoded without error", name, frame)
		}
	}
}

// FuzzQuantDecode feeds arbitrary bytes to both quant decoders as the
// payload of a well-formed binary chunk frame. The decoder must either
// error or return a sane payload — never panic, never allocate beyond the
// frame bound.
func FuzzQuantDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{byte(QuantInt8), 0, 0, 0, 0})
	f.Add([]byte{byte(QuantFP16), 0, 0, 0, 0, 1, 2})
	f.Add(append([]byte{byte(QuantInt8) | 0x20, 0, 0, 0x80, 0x3f}, 1, 2, 3, 4, 5))
	f.Fuzz(func(t *testing.T, frame []byte) {
		for _, mode := range []QuantMode{QuantInt8, QuantFP16} {
			var buf bytes.Buffer
			if err := Binary().NewEncoder(&buf).Encode(&Message{Volume: 1, Payload: frame}); err != nil {
				t.Fatal(err)
			}
			var out Message
			if err := Quant(mode, nil).NewDecoder(&buf).Decode(&out); err != nil {
				continue
			}
			if len(out.Payload) > 4*len(frame) {
				t.Fatalf("mode %d: decoded %d bytes from a %d-byte frame", mode, len(out.Payload), len(frame))
			}
		}
	})
}

// TestWireFrac pins the fractions the simulator's wire model consumes.
func TestWireFrac(t *testing.T) {
	cases := []struct {
		codec Codec
		want  float64
	}{
		{Binary(), 1},
		{Gob(), 1},
		{Deflate(), 1}, // data-dependent ratio: conservatively unmodelled
		{Quant(QuantInt8, nil), 0.25},
		{Quant(QuantFP16, nil), 0.5},
		{Quant(QuantInt8, Deflate()), 0.25},
		{Quant(QuantFP16, Deflate()), 0.5},
	}
	for _, tc := range cases {
		if got := WireFrac(tc.codec); got != tc.want {
			t.Errorf("WireFrac(%s) = %v, want %v", tc.codec.Name(), got, tc.want)
		}
	}
}

// TestHalfConversion checks the f32↔f16 primitives on exactly
// representable values (loss-free round trip) and the special cases.
func TestHalfConversion(t *testing.T) {
	exact := []float32{0, 1, -1, 0.5, 2048, -2048, 65504 /* max half */, 6.103515625e-05 /* min normal half */}
	for _, v := range exact {
		got := math.Float32frombits(f16to32(f32to16(math.Float32bits(v))))
		if got != v {
			t.Errorf("half roundtrip of %g gave %g", v, got)
		}
	}
	if math.Float32frombits(f16to32(f32to16(math.Float32bits(float32(math.Inf(1)))))) != float32(math.Inf(1)) {
		t.Error("+Inf must survive")
	}
	if !math.IsNaN(float64(math.Float32frombits(f16to32(f32to16(math.Float32bits(float32(math.NaN()))))))) {
		t.Error("NaN must survive")
	}
	if got := math.Float32frombits(f16to32(f32to16(math.Float32bits(1e9)))); !math.IsInf(float64(got), 1) {
		t.Errorf("overflow gave %g, want +Inf", got)
	}
	if got := math.Float32frombits(f16to32(f32to16(math.Float32bits(1e-10)))); got != 0 {
		t.Errorf("underflow gave %g, want 0", got)
	}
	// Negative zero keeps its sign bit.
	if f32to16(math.Float32bits(float32(math.Copysign(0, -1)))) != 0x8000 {
		t.Error("-0 must map to half -0")
	}
}
