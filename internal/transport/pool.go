package transport

import (
	"math/bits"
	"sync"
)

// Pool recycles chunk payload buffers. The runtime allocates one payload
// per chunk on the serving path (scatter rows, halo exchanges, results);
// with a pool those buffers cycle between the producer, the wire and the
// consumer instead of being garbage after one hop. Buffers are kept in
// power-of-two size-class buckets so a deployment's handful of distinct
// payload sizes never evict each other.
//
// Ownership protocol (documented on PayloadPool): Send transfers payload
// ownership to the transport, and payloads returned by Recv belong to the
// caller, who hands exhausted ones back with Put. A nil *Pool is valid and
// degrades to plain allocation.
// numBuckets covers size classes up to 1<<32 bytes; larger buffers bypass
// the pool entirely.
const numBuckets = 33

type Pool struct {
	buckets [numBuckets]sync.Pool
}

// NewPool returns an empty payload pool.
func NewPool() *Pool { return &Pool{} }

// Get returns a length-n buffer, reusing a pooled one when the size class
// has any. Sizes beyond the largest bucket (4 GiB) bypass the pool.
func (p *Pool) Get(n int) []byte {
	if n <= 0 {
		return nil
	}
	k := bits.Len(uint(n - 1)) // smallest k with n <= 1<<k
	if k >= numBuckets {
		return make([]byte, n)
	}
	if p != nil {
		if v := p.buckets[k].Get(); v != nil {
			return v.([]byte)[:n]
		}
	}
	return make([]byte, n, 1<<k)
}

// Put hands a buffer back for reuse. Buffers are filed under the largest
// power of two their capacity covers, so a later Get in that class always
// fits. Nil, zero-capacity and beyond-bucket buffers are ignored.
func (p *Pool) Put(b []byte) {
	if p == nil || cap(b) == 0 {
		return
	}
	k := bits.Len(uint(cap(b))) - 1 // largest k with 1<<k <= cap
	if k >= numBuckets {
		return
	}
	p.buckets[k].Put(b[:0])
}

// PayloadPool is implemented by transports whose connections recycle
// payload buffers. The ownership contract it formalises was already the
// runtime's behaviour: a payload is never touched after Send (inproc hands
// it to the receiver by reference), and a payload returned by Recv is
// consumed and dropped. With a pool attached, "dropped" becomes
// PutPayload and fresh payloads come from GetPayload.
type PayloadPool interface {
	// GetPayload returns a length-n payload buffer for an upcoming Send.
	GetPayload(n int) []byte
	// PutPayload recycles a payload whose consumer is done with it.
	PutPayload(b []byte)
}

// GetPayload draws a payload buffer from the transport's pool when it has
// one (decorators forward to their inner transport), else allocates.
func GetPayload(t Transport, n int) []byte {
	if pp, ok := t.(PayloadPool); ok {
		return pp.GetPayload(n)
	}
	return make([]byte, n)
}

// RecyclePayload hands a consumed payload back to the transport's pool,
// if it has one; otherwise the buffer is simply left to the GC.
func RecyclePayload(t Transport, b []byte) {
	if pp, ok := t.(PayloadPool); ok {
		pp.PutPayload(b)
	}
}
