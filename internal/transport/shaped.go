package transport

import (
	"sync"
	"time"

	"distredge/internal/network"
)

// Shaped decorates any inner transport so that every payload byte is
// charged the WiFi latency of a network.Network trace — the same model the
// simulator evaluates. The real runtime can then experience the paper's
// trace conditions (stable, highly dynamic, per-device heterogeneous) on
// top of a wire that is otherwise free, closing the sim↔runtime fidelity
// gap localhost TCP leaves open.
//
// Charging happens on the *sending* side of a dialled connection, before
// the message enters the inner transport, and the per-connection send lock
// is held for the duration: one directed link transfers one payload at a
// time, which is exactly the per-link busy floor sim.PipelineStream models
// (and, for the requester's scatter, its serialised uplink — the
// requester's input rows all leave through Send on its per-destination
// conns, so scatter bytes queue behind each other just as the simulator
// charges them). Control messages carry no payload and pass free.
//
// Time mapping: wall-clock seconds since the transport's *first charged
// send*, divided by TimeScale, are the trace time offset from Start —
// consistent with the runtime scaling compute sleeps by the same
// TimeScale. Anchoring at the first send rather than at construction
// keeps deployment setup (plan build, listener spin-up) from skewing the
// trace origin: the skew would be amplified by 1/TimeScale, and on a
// dynamic trace the run would then be charged a different phase of the
// trace than the simulator predicts from t = Start. Payload lengths are
// divided by BytesScale to recover model bytes, so the charged latency
// equals the simulator's TransferLatency for the unscaled activation
// regardless of how small the emulation payloads are.
type Shaped struct {
	inner      Transport
	net        *network.Network
	timeScale  float64
	bytesScale float64
	start      float64
	wireCodec  Codec // non-nil: charge post-codec frame bytes, not raw payload

	t0Once sync.Once
	t0     time.Time
}

// WireCodec is implemented by transports that can report the codec their
// frames actually cross the wire in (the tcp transport returns its
// configured codec). Shaped.ChargePostCodec uses it to charge emulated
// links the bytes the codec really produces.
type WireCodec interface {
	WireCodec() Codec
}

// NewShaped wraps inner so sends are charged trace latency from net.
// timeScale and bytesScale should match the runtime Options the cluster is
// deployed with (zero means 1); start is the trace-time origin in seconds.
func NewShaped(inner Transport, net *network.Network, timeScale, bytesScale, start float64) *Shaped {
	if timeScale <= 0 {
		timeScale = 1
	}
	if bytesScale <= 0 {
		bytesScale = 1
	}
	return &Shaped{
		inner:      inner,
		net:        net,
		timeScale:  timeScale,
		bytesScale: bytesScale,
		start:      start,
	}
}

func (t *Shaped) Name() string { return "shaped+" + t.inner.Name() }

// ChargePostCodec switches byte charging from raw payload lengths to the
// size of the codec-produced wire frame (minus the fixed chunk header,
// which is emulation overhead, not activation bytes): a quantizing or
// compressing codec then genuinely buys back link seconds on shaped runs,
// which is what makes compression wins measurable per wire regime. The
// codec comes from the inner transport's WireCodec; an inner transport
// without one (inproc — payloads cross by reference, there is no wire
// frame) keeps pre-codec charging silently, preserving today's semantics.
// Each message is encoded twice (once to size it, once to send it); the
// shaped transport trades that CPU for model accuracy by design. Returns t
// for chaining.
func (t *Shaped) ChargePostCodec() *Shaped {
	if wc, ok := t.inner.(WireCodec); ok {
		t.wireCodec = wc.WireCodec()
	}
	return t
}

// GetPayload / PutPayload forward payload pooling to the inner transport.
func (t *Shaped) GetPayload(n int) []byte { return GetPayload(t.inner, n) }
func (t *Shaped) PutPayload(b []byte)     { RecyclePayload(t.inner, b) }

// SetBufferHint forwards the deployment's max-chunk size to the inner
// transport. Shaped conns themselves stay on the per-message Send path
// (each payload must be charged individually), so only the buffer sizing
// crosses the decorator.
func (t *Shaped) SetBufferHint(maxChunkBytes int) { SetBufferHint(t.inner, maxChunkBytes) }

// traceTime returns the current trace time in model seconds, anchoring
// the wall clock at the first charged send.
func (t *Shaped) traceTime() float64 {
	t.t0Once.Do(func() { t.t0 = time.Now() })
	return t.start + time.Since(t.t0).Seconds()/t.timeScale
}

func (t *Shaped) Listen(self int) (Listener, error) {
	ln, err := t.inner.Listen(self)
	if err != nil {
		return nil, err
	}
	return &shapedListener{ln: ln, self: self}, nil
}

func (t *Shaped) Dial(self int, addr string) (Conn, error) {
	to, rest, err := splitDevAddr(addr)
	if err != nil {
		return nil, err
	}
	c, err := t.inner.Dial(self, rest)
	if err != nil {
		return nil, err
	}
	return &shapedConn{Conn: c, t: t, from: self, to: to}, nil
}

// shapedListener publishes the endpoint's device index in its address so
// dialling peers know which link to charge. Accepted conns pass through
// unwrapped: shaping charges the dialling side's sends, and the runtime
// only sends on dialled connections.
type shapedListener struct {
	ln   Listener
	self int
}

func (l *shapedListener) Accept() (Conn, error) { return l.ln.Accept() }
func (l *shapedListener) Addr() string          { return encodeDevAddr(l.self, l.ln.Addr()) }
func (l *shapedListener) Close() error          { return l.ln.Close() }

type shapedConn struct {
	Conn
	t        *Shaped
	from, to int
	mu       sync.Mutex

	// Post-codec sizing state (ChargePostCodec only): a per-conn encoder —
	// codecs are stateful per stream — writing into a byte counter.
	sizer   Encoder
	counter *countWriter
}

func (c *shapedConn) Send(m Message) error {
	if len(m.Payload) > 0 {
		c.mu.Lock()
		wireBytes := float64(len(m.Payload))
		if c.t.wireCodec != nil {
			wireBytes = float64(c.wireSize(m))
		}
		modelBytes := wireBytes / c.t.bytesScale
		lat := c.t.net.TransferLatency(c.from, c.to, modelBytes, c.t.traceTime())
		if lat > 0 {
			time.Sleep(time.Duration(lat * c.t.timeScale * float64(time.Second)))
		}
		c.mu.Unlock()
	}
	return c.Conn.Send(m)
}

// wireSize returns the bytes the message's payload occupies on the wire
// under the charging codec: the encoded frame length minus the fixed chunk
// header (emulation framing, not activation data). Called with c.mu held.
// A sizing failure falls back to the raw payload length — charging too
// many bytes is the conservative direction.
func (c *shapedConn) wireSize(m Message) int {
	if c.sizer == nil {
		c.counter = &countWriter{}
		c.sizer = c.t.wireCodec.NewEncoder(c.counter)
	}
	c.counter.n = 0
	if err := c.sizer.Encode(&m); err != nil {
		return len(m.Payload)
	}
	if n := c.counter.n - chunkHeaderLen; n > 0 {
		return n
	}
	return 0
}

// countWriter counts bytes and discards them.
type countWriter struct{ n int }

func (w *countWriter) Write(p []byte) (int, error) {
	w.n += len(p)
	return len(p), nil
}
