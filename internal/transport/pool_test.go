package transport

import (
	"bytes"
	"testing"
)

// TestPoolSizeClasses pins the bucket arithmetic: a Get after a Put of the
// same size class reuses the buffer, and a buffer never shrinks below the
// requested length.
func TestPoolSizeClasses(t *testing.T) {
	p := NewPool()
	b := p.Get(1000)
	if len(b) != 1000 || cap(b) < 1000 {
		t.Fatalf("Get(1000): len=%d cap=%d", len(b), cap(b))
	}
	p.Put(b)
	b2 := p.Get(900) // same power-of-two class as 1000
	if len(b2) != 900 {
		t.Fatalf("Get(900): len=%d", len(b2))
	}
	//distlint:allow payloadown -- this test pins that Put feeds the next same-class Get; comparing base pointers is the point
	if &b[0] != &b2[0] {
		t.Error("same-class Get after Put did not reuse the buffer")
	}
	if got := p.Get(0); got != nil {
		t.Errorf("Get(0) = %v, want nil", got)
	}
	p.Put(nil) // must not panic
	var nilPool *Pool
	if b := nilPool.Get(8); len(b) != 8 {
		t.Errorf("nil pool Get(8): len=%d", len(b))
	}
	nilPool.Put(b2) // must not panic
}

// TestPooledTCPRoundtripContent streams messages of interleaved sizes and
// distinct contents over a pooled TCP conn, recycling every received
// payload: reuse must never corrupt a later message.
func TestPooledTCPRoundtripContent(t *testing.T) {
	for _, codec := range []Codec{nil, Deflate()} {
		name := "binary"
		if codec != nil {
			name = codec.Name()
		}
		t.Run(name, func(t *testing.T) {
			tr := NewPooledTCP(codec, nil)
			pp := tr.(PayloadPool)
			ln, err := tr.Listen(0)
			if err != nil {
				t.Fatal(err)
			}
			defer ln.Close()
			acceptedCh := make(chan Conn, 1)
			go func() {
				c, _ := ln.Accept()
				acceptedCh <- c
			}()
			conn, err := tr.Dial(1, ln.Addr())
			if err != nil {
				t.Fatal(err)
			}
			defer conn.Close()
			accepted := <-acceptedCh

			sizes := []int{1024, 64, 4096, 64, 1024, 0, 333}
			for i, n := range sizes {
				payload := pp.GetPayload(n)
				for j := range payload {
					payload[j] = byte(i*31 + j)
				}
				want := append([]byte(nil), payload...)
				m := Message{Image: uint32(i), Volume: 2, Lo: 0, Hi: int32(n), Payload: payload}
				if err := conn.Send(m); err != nil {
					t.Fatal(err)
				}
				got, err := accepted.Recv()
				if err != nil {
					t.Fatal(err)
				}
				if got.Image != uint32(i) || !bytes.Equal(got.Payload, want) {
					t.Fatalf("message %d corrupted: image=%d len=%d", i, got.Image, len(got.Payload))
				}
				pp.PutPayload(got.Payload)
			}
		})
	}
}

// TestPooledInprocReusesBuffer pins the by-reference cycle: a payload sent
// over pooled inproc, consumed and recycled is the very buffer the next
// GetPayload returns.
func TestPooledInprocReusesBuffer(t *testing.T) {
	tr := NewPooledInproc(nil)
	ln, err := tr.Listen(0)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	acceptedCh := make(chan Conn, 1)
	go func() {
		c, _ := ln.Accept()
		acceptedCh <- c
	}()
	conn, err := tr.Dial(1, ln.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	accepted := <-acceptedCh

	b := tr.GetPayload(512)
	if err := conn.Send(Message{Image: 1, Volume: 0, Payload: b}); err != nil {
		t.Fatal(err)
	}
	got, err := accepted.Recv()
	if err != nil {
		t.Fatal(err)
	}
	//distlint:allow payloadown -- inproc hands payloads over by reference and this test pins that; nothing recycles b concurrently here
	if &got.Payload[0] != &b[0] {
		t.Fatal("inproc must hand the payload over by reference")
	}
	// sync.Pool deliberately drops a fraction of Puts when the race
	// detector is on, so a single Put/Get cycle is not guaranteed to
	// reuse — retry a bounded number of times before declaring the
	// recycling path broken.
	reused := false
	cur := got.Payload
	for attempt := 0; attempt < 32 && !reused; attempt++ {
		tr.PutPayload(cur)
		next := tr.GetPayload(512)
		//distlint:allow payloadown -- single-goroutine Put/Get cycle probing recycling; the base-pointer compare is the assertion
		reused = &next[0] == &cur[0]
		cur = next
	}
	if !reused {
		t.Error("recycled payload was not reused by the next GetPayload")
	}
}

// TestDeflateCodecRoundtrip checks content fidelity through the
// compressing codec: data chunks (compressible and empty), control
// messages on the gob path, and a multi-message stream through one
// stateful encoder/decoder pair.
func TestDeflateCodecRoundtrip(t *testing.T) {
	codec := Deflate()
	var buf bytes.Buffer
	enc := codec.NewEncoder(&buf)
	dec := codec.NewDecoder(&buf)
	msgs := []Message{
		testMessage(1024),
		testMessage(0),
		{Image: 3, Volume: VolHeartbeat, Lo: 7}, // control (heartbeat-shaped)
		testMessage(1 << 16),
	}
	for i, m := range msgs {
		if err := enc.Encode(&m); err != nil {
			t.Fatalf("encode %d: %v", i, err)
		}
		var out Message
		if err := dec.Decode(&out); err != nil {
			t.Fatalf("decode %d: %v", i, err)
		}
		if out.Image != m.Image || out.Volume != m.Volume || out.Lo != m.Lo || out.Hi != m.Hi {
			t.Fatalf("message %d header mismatch: %+v != %+v", i, out, m)
		}
		if !bytes.Equal(out.Payload, m.Payload) {
			t.Fatalf("message %d payload mismatch: %d vs %d bytes", i, len(out.Payload), len(m.Payload))
		}
	}
}

// TestDeflateCompresses pins that the wire actually shrinks for the
// float-activation-shaped payloads the runtime ships — the whole point of
// paying the CPU.
func TestDeflateCompresses(t *testing.T) {
	m := testMessage(64 << 10)
	var plain, compressed bytes.Buffer
	if err := Binary().NewEncoder(&plain).Encode(&m); err != nil {
		t.Fatal(err)
	}
	if err := Deflate().NewEncoder(&compressed).Encode(&m); err != nil {
		t.Fatal(err)
	}
	if compressed.Len() >= plain.Len()/2 {
		t.Errorf("deflate frame %dB not < half of plain %dB", compressed.Len(), plain.Len())
	}
}

// TestDeflateCorruptPayloadErrors feeds a binary frame whose payload is
// not a DEFLATE stream: Decode must fail cleanly, not panic or hang.
func TestDeflateCorruptPayloadErrors(t *testing.T) {
	var buf bytes.Buffer
	m := testMessage(256) // raw bytes, never compressed
	if err := Binary().NewEncoder(&buf).Encode(&m); err != nil {
		t.Fatal(err)
	}
	var out Message
	if err := Deflate().NewDecoder(&buf).Decode(&out); err == nil {
		t.Error("decoding a non-deflate payload must error")
	}
}

// TestParsePooledTransportsImplementPayloadPool keeps the serving stacks'
// pooling wired: every stack ParseTransport can build that is meant to
// pool must implement the PayloadPool interface.
func TestParsePooledTransportsImplementPayloadPool(t *testing.T) {
	for _, tr := range []Transport{
		NewPooledTCP(nil, nil),
		NewPooledTCP(Deflate(), nil),
		NewPooledTCP(Quant(QuantInt8, nil), nil),
		NewPooledTCP(Quant(QuantInt8, Deflate()), nil),
		NewPooledInproc(nil),
	} {
		if _, ok := tr.(PayloadPool); !ok {
			t.Errorf("%s does not implement PayloadPool", tr.Name())
		}
	}
	// Decorators forward pooling to their inner transport.
	shaped := Transport(NewShaped(NewPooledInproc(nil), nil, 1, 1, 0))
	if _, ok := shaped.(PayloadPool); !ok {
		t.Error("shaped decorator does not forward PayloadPool")
	}
	chaos := Transport(NewChaos(NewPooledInproc(nil), ChaosConfig{}))
	if _, ok := chaos.(PayloadPool); !ok {
		t.Error("chaos decorator does not forward PayloadPool")
	}
}
