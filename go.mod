module distredge

go 1.24
